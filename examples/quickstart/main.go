// Quickstart: simulate one application on the NetCache multiprocessor and
// its three baselines — all four runs concurrently on a worker pool — and
// print the headline comparison the paper's Figure 6 makes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"netcache"
)

func main() {
	const app = "gauss" // a High-reuse application: big NetCache win
	fmt.Printf("Simulating %q on four 16-node optical multiprocessors...\n\n", app)

	// One spec per system; RunBatch farms them out to GOMAXPROCS workers.
	// Every simulation is bit-deterministic, so the parallel results match
	// sequential runs exactly, and they come back in spec order.
	specs := make([]netcache.RunSpec, len(netcache.Systems))
	for i, sys := range netcache.Systems {
		specs[i] = netcache.RunSpec{
			App:    app,
			System: sys,
			Scale:  0.25, // quarter-scale input; 1.0 = the paper's 256x256
			Verify: true, // check the elimination actually happened
		}
	}
	results := netcache.RunBatch(context.Background(), netcache.BatchOptions{}, specs)

	var base int64
	for _, br := range results {
		if br.Err != nil {
			log.Fatal(br.Err)
		}
		res := br.Result
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-10s %12d pcycles  (%.2fx NetCache)", br.Spec.System, res.Cycles,
			float64(res.Cycles)/float64(base))
		if br.Spec.System == netcache.SystemNetCache {
			fmt.Printf("  shared-cache hit rate %.0f%%", 100*res.SharedCacheHitRate)
		}
		fmt.Println()
	}

	fmt.Println("\nThe NetCache wins because the pivot row each elimination step")
	fmt.Println("re-reads is captured by the optical ring: one memory fetch serves")
	fmt.Println("all sixteen processors instead of sixteen serialized ones.")
}
