// Quickstart: simulate one application on the NetCache multiprocessor and
// its three baselines, and print the headline comparison the paper's
// Figure 6 makes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"netcache"
)

func main() {
	const app = "gauss" // a High-reuse application: big NetCache win
	fmt.Printf("Simulating %q on four 16-node optical multiprocessors...\n\n", app)

	var base int64
	for _, sys := range netcache.Systems {
		res, err := netcache.Run(netcache.RunSpec{
			App:    app,
			System: sys,
			Scale:  0.25, // quarter-scale input; 1.0 = the paper's 256x256
			Verify: true, // check the elimination actually happened
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-10s %12d pcycles  (%.2fx NetCache)", sys, res.Cycles,
			float64(res.Cycles)/float64(base))
		if sys == netcache.SystemNetCache {
			fmt.Printf("  shared-cache hit rate %.0f%%", 100*res.SharedCacheHitRate)
		}
		fmt.Println()
	}

	fmt.Println("\nThe NetCache wins because the pivot row each elimination step")
	fmt.Println("re-reads is captured by the optical ring: one memory fetch serves")
	fmt.Println("all sixteen processors instead of sixteen serialized ones.")
}
