// Diskcache explores the paper's Section 3.5 extrapolation: using the
// NetCache ring as a disk block cache. "Our NetCache architecture can be
// applied to disk caching with only a marginal cost increase: the cost of a
// longer optical fiber."
//
// The example sweeps the fiber length: every extra kilometre adds ~760 KB
// of circulating storage (128 channels at 10 Gb/s), and the hit rate —
// hence the average disk read latency — improves accordingly.
//
// Run with:
//
//	go run ./examples/diskcache
package main

import (
	"fmt"
	"log"

	"netcache"
)

func main() {
	base := netcache.DefaultDiskCacheConfig()
	fmt.Println("NetCache as a disk block cache (Section 3.5)")
	fmt.Printf("16 clients, %d disk blocks of %d bytes, Zipf(%.1f) reads, disk ~%.1f ms\n\n",
		base.Blocks, base.BlockBytes, base.ZipfTheta,
		float64(base.DiskLatency+base.DiskTransfer)*5e-6)

	nocache := base
	nocache.Channels = 0
	baseline, err := netcache.RunDiskCache(nocache)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s %10s %12s %10s %14s\n", "fiber", "capacity", "roundtrip", "hit rate", "avg read")
	fmt.Printf("%-9s %10s %12s %10s %11.2f ms\n", "none", "-", "-", "-", baseline.AvgLatency*5e-6)

	for _, km := range []float64{1, 5, 10, 20, 40} {
		cfg := base
		cfg.FiberKm = km
		res, err := netcache.RunDiskCache(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.0f km %8.1f MB %9.1f us %9.1f%% %11.2f ms\n",
			km,
			float64(cfg.CapacityBytes())/(1<<20),
			float64(cfg.RingRoundtrip())*5e-3,
			100*res.HitRate,
			res.AvgLatency*5e-6)
	}

	fmt.Println("\nEach kilometre of fiber is cheap storage: hits are served in one")
	fmt.Println("ring roundtrip (tens of microseconds) instead of a disk access")
	fmt.Println("(milliseconds) — the marginal-cost argument of Section 3.5.")
}
