// Policystudy reproduces the Section 5.3 design-space studies on a chosen
// application: shared-cache size (Figure 8), channel associativity
// (Figure 11) and replacement policy (Figure 12) — the experiments that
// justify the NetCache's "random replacement, fully-associative channels"
// design. All ten configurations are simulated concurrently in one batch.
//
// Run with:
//
//	go run ./examples/policystudy [-app sor] [-scale 0.25]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"netcache"
)

func main() {
	app := flag.String("app", "sor", "application to study")
	scale := flag.Float64("scale", 0.25, "input scale")
	flag.Parse()

	sizes := []int{16, 32, 64}
	assoc := []bool{false, true}
	policies := []netcache.Policy{
		netcache.PolicyRandom, netcache.PolicyLFU, netcache.PolicyLRU, netcache.PolicyFIFO,
	}

	var specs []netcache.RunSpec
	add := func(cfg netcache.Config) {
		specs = append(specs, netcache.RunSpec{
			App: *app, System: netcache.SystemNetCache, Config: cfg, Scale: *scale,
		})
	}
	for _, kb := range sizes {
		cfg := netcache.DefaultConfig()
		cfg.SharedCacheKB = kb
		add(cfg)
	}
	for _, dm := range assoc {
		cfg := netcache.DefaultConfig()
		cfg.SharedDirectMap = dm
		add(cfg)
	}
	for _, pol := range policies {
		cfg := netcache.DefaultConfig()
		cfg.SharedPolicy = pol
		add(cfg)
	}

	results := netcache.RunBatch(context.Background(), netcache.BatchOptions{}, specs)
	res := make([]netcache.Result, len(results))
	for i, br := range results {
		if br.Err != nil {
			log.Fatal(br.Err)
		}
		res[i] = br.Result
	}

	fmt.Printf("Shared cache design space for %q (16 nodes)\n\n", *app)

	fmt.Println("Size (Figure 8):")
	for i, kb := range sizes {
		fmt.Printf("  %2d KB: hit rate %5.1f%%  run time %d\n",
			kb, 100*res[i].SharedCacheHitRate, res[i].Cycles)
	}

	fmt.Println("\nChannel associativity (Figure 11):")
	for i, dm := range assoc {
		name := "fully-associative"
		if dm {
			name = "direct-mapped"
		}
		fmt.Printf("  %-17s: hit rate %5.1f%%\n", name, 100*res[len(sizes)+i].SharedCacheHitRate)
	}

	fmt.Println("\nReplacement policy (Figure 12):")
	for i, pol := range policies {
		fmt.Printf("  %-7s: hit rate %5.1f%%\n", pol, 100*res[len(sizes)+len(assoc)+i].SharedCacheHitRate)
	}

	fmt.Println("\nThe paper's design — random replacement on fully-associative")
	fmt.Println("channels — needs no recency metadata in the ring hardware, and the")
	fmt.Println("sweeps above show fancier policies do not earn their complexity:")
	fmt.Println("every processor inserts blocks into the shared cache, so per-node")
	fmt.Println("recency is a poor signal (Section 5.3.4).")
}
