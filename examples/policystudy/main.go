// Policystudy reproduces the Section 5.3 design-space studies on a chosen
// application: shared-cache size (Figure 8), channel associativity
// (Figure 11) and replacement policy (Figure 12) — the experiments that
// justify the NetCache's "random replacement, fully-associative channels"
// design.
//
// Run with:
//
//	go run ./examples/policystudy [-app sor] [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"netcache"
)

func main() {
	app := flag.String("app", "sor", "application to study")
	scale := flag.Float64("scale", 0.25, "input scale")
	flag.Parse()

	run := func(cfg netcache.Config) netcache.Result {
		res, err := netcache.Run(netcache.RunSpec{
			App: *app, System: netcache.SystemNetCache, Config: cfg, Scale: *scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("Shared cache design space for %q (16 nodes)\n\n", *app)

	fmt.Println("Size (Figure 8):")
	for _, kb := range []int{16, 32, 64} {
		cfg := netcache.DefaultConfig()
		cfg.SharedCacheKB = kb
		res := run(cfg)
		fmt.Printf("  %2d KB: hit rate %5.1f%%  run time %d\n",
			kb, 100*res.SharedCacheHitRate, res.Cycles)
	}

	fmt.Println("\nChannel associativity (Figure 11):")
	for _, dm := range []bool{false, true} {
		cfg := netcache.DefaultConfig()
		cfg.SharedDirectMap = dm
		res := run(cfg)
		name := "fully-associative"
		if dm {
			name = "direct-mapped"
		}
		fmt.Printf("  %-17s: hit rate %5.1f%%\n", name, 100*res.SharedCacheHitRate)
	}

	fmt.Println("\nReplacement policy (Figure 12):")
	for _, pol := range []netcache.Policy{
		netcache.PolicyRandom, netcache.PolicyLFU, netcache.PolicyLRU, netcache.PolicyFIFO,
	} {
		cfg := netcache.DefaultConfig()
		cfg.SharedPolicy = pol
		res := run(cfg)
		fmt.Printf("  %-7s: hit rate %5.1f%%\n", pol, 100*res.SharedCacheHitRate)
	}

	fmt.Println("\nThe paper's design — random replacement on fully-associative")
	fmt.Println("channels — needs no recency metadata in the ring hardware, and the")
	fmt.Println("sweeps above show fancier policies do not earn their complexity:")
	fmt.Println("every processor inserts blocks into the shared cache, so per-node")
	fmt.Println("recency is a poor signal (Section 5.3.4).")
}
