// Customapp shows how to program your own parallel kernel against the
// execution-driven machine API and measure it on every simulated system.
//
// The kernel is a parallel histogram with a lock-protected merge — a
// write-heavy pattern that stresses update coherence — followed by a
// stencil pass that re-reads a small shared table, the access pattern the
// NetCache's ring rewards.
//
// Run with:
//
//	go run ./examples/customapp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netcache"
)

const (
	items   = 1 << 14
	buckets = 256
)

func main() {
	fmt.Println("Custom kernel: parallel histogram + table-lookup smoothing")
	fmt.Println()
	// A deadline guards against a buggy kernel that deadlocks or spins: the
	// engine aborts the run and returns the context error instead of
	// hanging. A context that never fires cannot change the results.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, sys := range netcache.Systems {
		res, err := netcache.RunCustomContext(ctx, "histogram", sys, netcache.Config{}, build)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10d pcycles   reads %7d   shared-cache hits %d\n",
			sys, res.Cycles, res.Reads, res.SharedCacheHits)
	}
}

// build allocates the kernel's data on the machine and returns the
// per-processor body.
func build(m *netcache.Machine) func(*netcache.Ctx) {
	data := m.NewSharedI64(items)
	hist := m.NewSharedI64(buckets)
	smooth := m.NewSharedF64(buckets)

	// Deterministic input values.
	x := uint64(0x2545F4914F6CDD1D)
	for i := range data.Data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		data.Data[i] = int64(x % buckets)
	}

	return func(c *netcache.Ctx) {
		np, id := c.NP(), c.ID()
		lo, hi := id*items/np, (id+1)*items/np

		// Phase 1: private histogram of my chunk.
		local := make([]int64, buckets)
		for i := lo; i < hi; i++ {
			v := data.Load(c, i)
			local[v]++
			c.Compute(4)
		}

		// Phase 2: lock-protected merge into the shared histogram.
		c.Lock(1)
		for b := 0; b < buckets; b++ {
			if local[b] == 0 {
				continue
			}
			cur := hist.Load(c, b)
			hist.Store(c, b, cur+local[b])
			c.Compute(2)
		}
		c.Unlock(1)
		c.Barrier(1)

		// Phase 3: every processor smooths a slice of the histogram,
		// re-reading neighbours — the shared table ends up in the ring.
		blo, bhi := id*buckets/np, (id+1)*buckets/np
		for b := blo; b < bhi; b++ {
			l, r := (b+buckets-1)%buckets, (b+1)%buckets
			v := float64(hist.Load(c, b))
			vl := float64(hist.Load(c, l))
			vr := float64(hist.Load(c, r))
			c.Compute(6)
			smooth.Store(c, b, (vl+2*v+vr)/4)
		}
		c.Barrier(2)

		// Sanity check on processor 0: counts must add up.
		if id == 0 {
			var sum int64
			for b := 0; b < buckets; b++ {
				sum += hist.Load(c, b)
				c.Compute(1)
			}
			if sum != items {
				panic(fmt.Sprintf("histogram lost counts: %d != %d", sum, items))
			}
		}
	}
}
