package netcache_test

import (
	"fmt"

	"netcache"
)

// ExampleParseSystem shows the system name round-trip.
func ExampleParseSystem() {
	sys, _ := netcache.ParseSystem("dmon-i")
	fmt.Println(sys)
	// Output: dmon-i
}

// ExampleRun simulates one Table 4 application on the NetCache machine.
func ExampleRun() {
	res, err := netcache.Run(netcache.RunSpec{
		App:    "sor",
		System: netcache.SystemNetCache,
		Scale:  0.06, // tiny input for the example; 1.0 = paper inputs
		Verify: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("finished:", res.Cycles > 0, "verified reads:", res.Reads > 0)
	// Output: finished: true verified reads: true
}

// ExampleRunCustom runs a user-written kernel on the simulated machine.
func ExampleRunCustom() {
	res, err := netcache.RunCustom("fill", netcache.SystemNetCache, netcache.Config{},
		func(m *netcache.Machine) func(*netcache.Ctx) {
			a := m.NewSharedF64(256)
			return func(c *netcache.Ctx) {
				for i := c.ID(); i < a.Len(); i += c.NP() {
					a.Store(c, i, 1)
				}
				c.Barrier(0)
			}
		})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("writes:", res.Writes)
	// Output: writes: 256
}

// ExampleApps lists the Table 4 workload.
func ExampleApps() {
	fmt.Println(len(netcache.Apps()), "applications")
	// Output: 12 applications
}
