package netcache_test

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment at a reduced deterministic scale (the
// netbench command reproduces them at any scale, including the paper's
// full inputs with -scale 1.0) and reports the headline quantity of the
// table/figure as a custom metric.

import (
	"context"
	"testing"

	"netcache"
	"netcache/internal/exp"
	"netcache/internal/timing"
)

const benchScale = 0.12

var bctx = context.Background()

func benchRunner() *exp.Runner {
	return exp.NewRunner(exp.Options{Scale: benchScale})
}

// benchApps is a representative subset (one per reuse group) used by the
// per-figure benchmarks to keep iterations bounded; netbench covers all 12.
var benchApps = []string{"gauss", "sor", "radix"}

// BenchmarkTable1SharedCacheLatencies rebuilds the Table 1 latency model.
func BenchmarkTable1SharedCacheLatencies(b *testing.B) {
	var hit, miss timing.Time
	for i := 0; i < b.N; i++ {
		m := timing.New(timing.DefaultParams())
		hit, miss = m.SharedCacheHit(), m.SharedCacheMiss()
	}
	b.ReportMetric(float64(hit), "hit-pcycles")
	b.ReportMetric(float64(miss), "miss-pcycles")
}

// BenchmarkTable2BaselineMissLatencies rebuilds the Table 2 latency model.
func BenchmarkTable2BaselineMissLatencies(b *testing.B) {
	var lam, dmon timing.Time
	for i := 0; i < b.N; i++ {
		m := timing.New(timing.DefaultParams())
		lam, dmon = m.LambdaMiss(), m.DMONMiss()
	}
	b.ReportMetric(float64(lam), "lambdanet-pcycles")
	b.ReportMetric(float64(dmon), "dmon-pcycles")
}

// BenchmarkTable3CoherenceLatencies rebuilds the Table 3 latency model.
func BenchmarkTable3CoherenceLatencies(b *testing.B) {
	var nc, lam, du, di timing.Time
	for i := 0; i < b.N; i++ {
		m := timing.New(timing.DefaultParams())
		nc, lam, du, di = m.CoherenceNetCache(8), m.CoherenceLambda(8), m.CoherenceDMONU(8), m.CoherenceDMONI()
	}
	b.ReportMetric(float64(nc), "netcache-pcycles")
	b.ReportMetric(float64(lam), "lambdanet-pcycles")
	b.ReportMetric(float64(du), "dmonu-pcycles")
	b.ReportMetric(float64(di), "dmoni-pcycles")
}

// BenchmarkTable4Workload runs every Table 4 application once per iteration
// on the base NetCache machine.
func BenchmarkTable4Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range netcache.Apps() {
			if _, err := netcache.Run(netcache.RunSpec{App: app, System: netcache.SystemNetCache, Scale: 0.06}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5Speedup regenerates the Figure 5 speedup measurement.
func BenchmarkFig5Speedup(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r2, err := exp.Figure5(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		sp = r2[0].Speedup
		_ = r2
	}
	b.ReportMetric(sp, "speedup-cg")
}

// BenchmarkFig6Systems regenerates the Figure 6 four-system comparison on
// the representative subset.
func BenchmarkFig6Systems(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale, Apps: benchApps})
		rows, err := exp.Figure6(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		adv = rows[0].Norm["dmon-i"]
	}
	b.ReportMetric(adv, "gauss-dmoni-vs-netcache")
}

// BenchmarkFig7Effectiveness regenerates the Figure 7 caching study.
func BenchmarkFig7Effectiveness(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale, Apps: benchApps})
		rows, err := exp.Figure7(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		hit = rows[0].HitRate
	}
	b.ReportMetric(hit, "gauss-hit-%")
}

// BenchmarkFig8SharedCacheSizes regenerates the Figure 8 size sweep.
func BenchmarkFig8SharedCacheSizes(b *testing.B) {
	var h16, h64 float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale, Apps: benchApps})
		rows, err := exp.Figure8(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		h16, h64 = rows[0].Hits[16], rows[0].Hits[64]
	}
	b.ReportMetric(h16, "gauss-hit16-%")
	b.ReportMetric(h64, "gauss-hit64-%")
}

// BenchmarkFig9And10SizeEffects regenerates the Figures 9/10 latency and
// run-time sweeps.
func BenchmarkFig9And10SizeEffects(b *testing.B) {
	var rt float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale, Apps: benchApps})
		rows, err := exp.Figure9And10(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		rt = rows[0].RunTime[32]
	}
	b.ReportMetric(rt, "gauss-runtime-32KB-vs-none")
}

// BenchmarkBlockSize regenerates the Section 5.3.2 block-size study.
func BenchmarkBlockSize(b *testing.B) {
	var pen float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale, Apps: benchApps})
		rows, err := exp.BlockSize(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		pen = rows[0].PenaltyPc
	}
	b.ReportMetric(pen, "gauss-128B-penalty-%")
}

// BenchmarkFig11Associativity regenerates the Figure 11 associativity study.
func BenchmarkFig11Associativity(b *testing.B) {
	var dm float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale, Apps: benchApps})
		rows, err := exp.Figure11(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		dm = rows[0].HitDirect
	}
	b.ReportMetric(dm, "gauss-directmapped-hit-%")
}

// BenchmarkFig12Policies regenerates the Figure 12 replacement-policy study.
func BenchmarkFig12Policies(b *testing.B) {
	var rnd, lru float64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale, Apps: benchApps})
		rows, err := exp.Figure12(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
		rnd, lru = rows[0].Hits["random"], rows[0].Hits["lru"]
	}
	b.ReportMetric(rnd, "gauss-random-hit-%")
	b.ReportMetric(lru, "gauss-lru-hit-%")
}

// BenchmarkFig13L2Sizes regenerates the Figure 13 second-level cache sweep.
func BenchmarkFig13L2Sizes(b *testing.B) {
	var rows []exp.SweepRow
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale})
		var err error
		rows, err = exp.Figure13(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "points")
}

// BenchmarkFig14Rates regenerates the Figure 14 transmission-rate sweep.
func BenchmarkFig14Rates(b *testing.B) {
	var rows []exp.SweepRow
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale})
		var err error
		rows, err = exp.Figure14(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "points")
}

// BenchmarkFig15MemoryLatencies regenerates the Figure 15 memory-latency
// sweep.
func BenchmarkFig15MemoryLatencies(b *testing.B) {
	var rows []exp.SweepRow
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Scale: benchScale})
		var err error
		rows, err = exp.Figure15(bctx, r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "points")
}

// BenchmarkSimulatorThroughput measures raw simulated-reference throughput
// of the execution-driven engine (not a paper figure; an engineering bench).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var refs uint64
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := netcache.Run(netcache.RunSpec{App: "sor", System: netcache.SystemNetCache, Scale: 0.12})
		if err != nil {
			b.Fatal(err)
		}
		refs += res.Reads + res.Writes
		cycles += res.Cycles
	}
	b.ReportMetric(float64(refs)/float64(b.N), "refs/run")
	b.ReportMetric(float64(cycles)/float64(b.N), "pcycles/run")
}

// BenchmarkAblationDualStart measures the Section 3.4 dual-start design
// choice (DESIGN.md ablation).
func BenchmarkAblationDualStart(b *testing.B) {
	var pen float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationDualStart(bctx, exp.NewRunner(exp.Options{Scale: benchScale, Apps: []string{"cg"}}))
		if err != nil {
			b.Fatal(err)
		}
		pen = rows[0].PenaltyPc
	}
	b.ReportMetric(pen, "single-start-penalty-%")
}

// BenchmarkScaling measures the machine-size extension study.
func BenchmarkScaling(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		rows, err := exp.Scaling(bctx, exp.NewRunner(exp.Options{Scale: 0.06, Apps: []string{"sor"}}))
		if err != nil {
			b.Fatal(err)
		}
		sp = rows[len(rows)-1].Speedup
	}
	b.ReportMetric(sp, "p32-speedup")
}

// BenchmarkDiskCacheExtension measures the Section 3.5 disk-caching
// extrapolation (extension feature).
func BenchmarkDiskCacheExtension(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		cfg := netcache.DefaultDiskCacheConfig()
		cfg.Reads = 200
		res, err := netcache.RunDiskCache(cfg)
		if err != nil {
			b.Fatal(err)
		}
		hit = res.HitRate
	}
	b.ReportMetric(100*hit, "hit-%")
}
