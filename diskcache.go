package netcache

import "netcache/internal/diskcache"

// DiskCacheConfig configures the Section 3.5 extension: the NetCache ring
// used as a disk block cache (a longer fiber stores megabytes of blocks at
// a fraction of a disk access's latency).
type DiskCacheConfig = diskcache.Config

// DiskCacheResult summarizes a disk-cache simulation.
type DiskCacheResult = diskcache.Result

// DefaultDiskCacheConfig returns a laptop-scale configuration of the
// disk-caching thought experiment.
func DefaultDiskCacheConfig() DiskCacheConfig { return diskcache.DefaultConfig() }

// RunDiskCache simulates clients reading Zipf-distributed disk blocks
// through the ring cache; set Channels to zero for the uncached baseline.
func RunDiskCache(cfg DiskCacheConfig) (DiskCacheResult, error) { return diskcache.Run(cfg) }
