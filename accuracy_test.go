package netcache_test

// The sampled-simulation accuracy harness: runs the corpus both ways — full
// detail and representative-interval sampled — and asserts the sampled
// estimates reproduce the headline metrics within declared bounds.
//
// Two tiers:
//
//   - TestSampledAccuracyQuick always runs: three apps at scale 0.25 on the
//     NetCache system, tight bounds. It is the regression tripwire — an
//     engine or estimator change that breaks extrapolation fails ordinary
//     `go test ./...` (and the CI race matrix) within seconds.
//
//   - TestSampledAccuracyFull runs when NETCACHE_ACCURACY=1: the twelve
//     Table 4 applications across the four Figure 6 systems at scale 1.0,
//     plus the 1-processor runs Figure 5 needs, in both modes. It asserts
//     the figure-level metrics (Figure 5 speedup curves, Figure 6
//     normalized run times, Figure 8 shared-cache hit rates, miss ratios,
//     miss latencies) within the documented bounds, and that the sampled
//     corpus ran at least minCorpusSpeedup× faster than the full corpus.
//
// The declared bounds are the contract EXPERIMENTS.md documents: figure
// metrics are ratios (speedups, normalized run times) or state-derived
// counters (hit/miss rates), where the estimator's residual per-app bias
// largely cancels; raw per-app cycle counts carry wider error and are not
// what the evaluation reads.

import (
	"context"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"netcache"
)

// corpusSampling is the validated sampled-sweep configuration: stratified
// placement, 2048-reference intervals behind 4096-reference warmups, one
// interval per 32 epochs, a 32-interval budget (the period doubles at each
// budget rollover), seed 1. EXPERIMENTS.md records its measured accuracy.
func corpusSampling() *netcache.Sampling {
	return &netcache.Sampling{
		Mode:         netcache.SampleStratified,
		IntervalRefs: 2048, WarmupRefs: 4096, Period: 32, Intervals: 32, Seed: 1,
	}
}

// Quick-gate bounds (scale 0.25, apps below): several times the measured
// errors (≤3.2% relative, ≤0.16pp hit rate), far below "broken". The gate
// samples at period 4 — scale-0.25 runs are short, and the sparse corpus
// period leaves too few intervals for stable estimates; density is a
// per-run-length choice, not part of the machinery under test.
const (
	quickCycleRel = 0.08   // |est/full - 1| on run time
	quickLatRel   = 0.10   // |est/full - 1| on mean miss latency
	quickHitAbs   = 0.01   // absolute shared-cache hit-rate error
	quickMissAbs  = 0.0005 // absolute miss-ratio error
)

func TestSampledAccuracyQuick(t *testing.T) {
	for _, app := range []string{"gauss", "cg", "em3d"} {
		full, err := netcache.Run(netcache.RunSpec{App: app, System: netcache.SystemNetCache, Scale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		dense := corpusSampling()
		dense.Period = 4
		smp, err := netcache.Run(netcache.RunSpec{
			App: app, System: netcache.SystemNetCache, Scale: 0.25, Sampling: dense,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := smp.Sampled
		if s == nil || s.Degraded {
			t.Fatalf("%s: sampled run missing estimates or degraded: %+v", app, s)
		}
		if r := relErr(s.Cycles.Mean, float64(full.Cycles)); r > quickCycleRel {
			t.Errorf("%s: estimated cycles off by %.1f%% (bound %.0f%%)", app, 100*r, 100*quickCycleRel)
		}
		if r := relErr(s.AvgL2MissLatency.Mean, full.AvgL2MissLatency); r > quickLatRel {
			t.Errorf("%s: estimated miss latency off by %.1f%% (bound %.0f%%)", app, 100*r, 100*quickLatRel)
		}
		if d := math.Abs(s.SharedCacheHitRate.Mean - full.SharedCacheHitRate); d > quickHitAbs {
			t.Errorf("%s: estimated hit rate off by %.2fpp (bound %.0fpp)", app, 100*d, 100*quickHitAbs)
		}
		fullMiss := float64(full.L2Misses) / float64(full.Reads)
		if d := math.Abs(s.MissRatio.Mean - fullMiss); d > quickMissAbs {
			t.Errorf("%s: estimated miss ratio off by %.4fpp (bound %.2fpp)", app, 100*d, 100*quickMissAbs)
		}
	}
}

func relErr(est, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return math.Abs(est-ref) / math.Abs(ref)
}

// Full-harness bounds (scale 1.0), set from measured errors plus margin
// (EXPERIMENTS.md records the measurements). Two regimes:
//
//   - Counter metrics (miss ratio, hit rate) come from the hybrid run's
//     totals — state advances through every reference — so they are
//     near-exact wherever functional-mode state transitions match detailed
//     mode. The exception is dmon-i: under an invalidation protocol the
//     detailed run's timing races decide which sharer's copy dies, and the
//     functional model serializes those races, so state genuinely diverges
//     and the miss-ratio bound is wider there.
//
//   - Timing metrics (cycles, miss latency, the Figure 5/6 ratios built
//     from them) are interval estimates. Apps whose cost is concentrated
//     in short contention storms (fft, mg, radix) are the documented
//     outliers: a log-uniform interval budget under-samples bursts, so
//     those apps get factor-scale sanity bounds (stormRelax) rather than
//     tight ones. The remaining nine apps hold the tight bounds.
const (
	fullFig5Rel      = 0.20   // Figure 5: T(1)/T(16) speedup, relative
	fullFig6Rel      = 0.25   // Figure 6: run time normalized to NetCache, relative
	fullFig6RelInval = 0.50   // Figure 6 on dmon-i (invalidation races shift misses)
	fullFig8HitAbs   = 0.05   // Figure 8 curve point: hit rate at 32KB, absolute
	fullMissAbs      = 0.0005 // miss ratio, absolute (netcache/lambdanet/dmon-u)
	fullMissAbsInval = 0.02   // miss ratio, absolute, dmon-i (invalidation races)
	fullLatRel       = 0.50   // mean miss latency, relative (per app×system)
	stormRelax       = 3.0    // bound multiplier for storm-dominated apps
	// The sampled corpus ran 11.8x faster than full when sampling landed;
	// the big-machine hot-path work then sped the *full* engine up too
	// (sharer-table probe fusion, packed sets), shrinking the ratio to
	// ~8.6x at unchanged accuracy. The floor guards against sampling
	// overhead creeping back, not against the full engine improving.
	minCorpusSpeedup = 7.0 // sampled corpus wall-clock advantage
)

// stormApps are the storm-dominated outliers described above.
var stormApps = map[string]bool{"fft": true, "mg": true, "radix": true}

func TestSampledAccuracyFull(t *testing.T) {
	if os.Getenv("NETCACHE_ACCURACY") == "" {
		t.Skip("set NETCACHE_ACCURACY=1 to run the scale-1.0 sampled-accuracy harness (tens of minutes)")
	}
	apps := netcache.Apps()
	systems := []netcache.System{
		netcache.SystemNetCache, netcache.SystemLambdaNet, netcache.SystemDMONU, netcache.SystemDMONI,
	}

	// The corpus: every app on every Figure 6 system, plus the 1-processor
	// NetCache runs Figure 5 needs.
	var specs []netcache.RunSpec
	for _, app := range apps {
		for _, sys := range systems {
			specs = append(specs, netcache.RunSpec{App: app, System: sys, Scale: 1})
		}
		one := netcache.DefaultConfig()
		one.Procs = 1
		specs = append(specs, netcache.RunSpec{App: app, System: netcache.SystemNetCache, Config: one, Scale: 1})
	}

	run := func(sampled bool) (map[string]netcache.Result, map[string]time.Duration, time.Duration) {
		batch := make([]netcache.RunSpec, len(specs))
		copy(batch, specs)
		if sampled {
			for i := range batch {
				batch[i].Sampling = corpusSampling()
			}
		}
		// Wall is summed per run, so the comparison is worker-count
		// independent.
		var mu sync.Mutex
		var wall time.Duration
		walls := make(map[string]time.Duration, len(specs))
		res := netcache.RunBatch(context.Background(), netcache.BatchOptions{
			Workers: runtime.GOMAXPROCS(0),
			OnDone: func(i int, _ netcache.RunSpec, _ netcache.Result, _ error, w time.Duration) {
				mu.Lock()
				wall += w
				walls[key(specs[i])] = w
				mu.Unlock()
			},
		}, batch)
		out := make(map[string]netcache.Result, len(res))
		for i, br := range res {
			if br.Err != nil {
				t.Fatalf("%s on %s (sampled=%v): %v", br.Spec.App, br.Spec.System, sampled, br.Err)
			}
			out[key(specs[i])] = br.Result
		}
		return out, walls, wall
	}

	full, fullWalls, fullWall := run(false)
	smp, smpWalls, smpWall := run(true)
	t.Logf("corpus wall: full %s, sampled %s, speedup %.1fx", fullWall, smpWall, float64(fullWall)/float64(smpWall))

	// Diagnostics for EXPERIMENTS.md: per-app errors and speedup on the
	// NetCache system, the headline configuration.
	for _, app := range apps {
		k := key(netcache.RunSpec{App: app, System: netcache.SystemNetCache, Scale: 1})
		f, s := full[k], smp[k]
		t.Logf("%-9s cyc %+6.1f%%  hit %+5.2fpp  lat %+6.1f%%  miss %+7.4fpp  speedup %4.1fx", app,
			100*(s.EstimatedCycles()/float64(f.Cycles)-1),
			100*(s.EstimatedSharedHitRate()-f.SharedCacheHitRate),
			100*(s.EstimatedAvgL2MissLatency()/f.AvgL2MissLatency-1),
			100*(s.EstimatedMissRatio()-float64(f.L2Misses)/float64(f.Reads)),
			float64(fullWalls[k])/float64(smpWalls[k]))
	}

	for _, app := range apps {
		// Storm-dominated apps hold factor-scale sanity bounds on the
		// timing metrics; everything else holds the tight bounds.
		relax := 1.0
		if stormApps[app] {
			relax = stormRelax
		}
		t16 := key(netcache.RunSpec{App: app, System: netcache.SystemNetCache, Scale: 1})
		one := netcache.DefaultConfig()
		one.Procs = 1
		t1 := key(netcache.RunSpec{App: app, System: netcache.SystemNetCache, Config: one, Scale: 1})

		// Figure 5: the speedup curve point T(1)/T(16).
		fullSp := float64(full[t1].Cycles) / float64(full[t16].Cycles)
		smpSp := smp[t1].EstimatedCycles() / smp[t16].EstimatedCycles()
		if r := relErr(smpSp, fullSp); r > fullFig5Rel*relax {
			t.Errorf("%s: Figure 5 speedup %.2f vs full %.2f (%.1f%% > %.0f%%)",
				app, smpSp, fullSp, 100*r, 100*fullFig5Rel*relax)
		}

		// Figure 8 curve point: NetCache shared-cache hit rate at 32KB.
		// Hit rate is a counter metric, so storm apps hold the same bound.
		if d := math.Abs(smp[t16].EstimatedSharedHitRate() - full[t16].SharedCacheHitRate); d > fullFig8HitAbs {
			t.Errorf("%s: Figure 8 hit rate off by %.2fpp (bound %.0fpp)", app, 100*d, 100*fullFig8HitAbs)
		}

		for _, sys := range systems {
			k := key(netcache.RunSpec{App: app, System: sys, Scale: 1})
			// Figure 6: run time normalized to NetCache. On dmon-i the
			// wider bound reflects state divergence (see the miss-ratio
			// bound above), which feeds straight into run time.
			fig6Bound := fullFig6Rel
			if sys == netcache.SystemDMONI {
				fig6Bound = fullFig6RelInval
			}
			fullNorm := float64(full[k].Cycles) / float64(full[t16].Cycles)
			smpNorm := smp[k].EstimatedCycles() / smp[t16].EstimatedCycles()
			if r := relErr(smpNorm, fullNorm); r > fig6Bound*relax {
				t.Errorf("%s on %s: Figure 6 norm %.3f vs full %.3f (%.1f%% > %.0f%%)",
					app, sys, smpNorm, fullNorm, 100*r, 100*fig6Bound*relax)
			}
			missBound := fullMissAbs
			if sys == netcache.SystemDMONI {
				missBound = fullMissAbsInval
			}
			if stormApps[app] {
				missBound *= stormRelax
			}
			fullMiss := float64(full[k].L2Misses) / float64(full[k].Reads)
			if d := math.Abs(smp[k].EstimatedMissRatio() - fullMiss); d > missBound {
				t.Errorf("%s on %s: miss ratio off by %.4fpp (bound %.4fpp)", app, sys, 100*d, 100*missBound)
			}
			if r := relErr(smp[k].EstimatedAvgL2MissLatency(), full[k].AvgL2MissLatency); r > fullLatRel*relax {
				t.Errorf("%s on %s: miss latency off by %.1f%% (bound %.0f%%)", app, sys, 100*r, 100*fullLatRel*relax)
			}
		}
	}

	if sp := float64(fullWall) / float64(smpWall); sp < minCorpusSpeedup {
		t.Errorf("corpus speedup %.1fx below the %.0fx floor", sp, minCorpusSpeedup)
	}
}

// key is a compact map key for one corpus spec.
func key(s netcache.RunSpec) string {
	p := s.Config.Procs
	return fmt.Sprintf("%s/%s/%d", s.App, s.System, p)
}
